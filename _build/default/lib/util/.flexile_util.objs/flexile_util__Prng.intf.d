lib/util/prng.mli:
