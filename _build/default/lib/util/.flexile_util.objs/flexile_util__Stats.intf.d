lib/util/stats.mli:
