(** Deterministic SplitMix64 pseudo-random generator.

    Every source of randomness in this repository (topology generation,
    Weibull failure probabilities, gravity traffic, class splits,
    emulation jitter) flows through named, seeded instances of this
    generator so that every experiment is reproducible bit-for-bit. *)

type t

val create : int64 -> t
val of_string : string -> t
(** Seed derived from a name (FNV-1a hash); used to give each
    experiment component an independent, stable stream. *)

val split : t -> string -> t
(** Independent child stream identified by a label. *)

val next : t -> int64
val float : t -> float
(** Uniform in [0, 1). *)

val uniform : t -> float -> float -> float
val int : t -> int -> int
(** Uniform in [0, n). Requires n > 0. *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val weibull : t -> shape:float -> scale:float -> float
val exponential : t -> rate:float -> float
val shuffle : t -> 'a array -> unit
val choose : t -> 'a array -> 'a
