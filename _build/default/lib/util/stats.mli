(** Small statistics toolkit used by the evaluation pipeline:
    percentiles over probability-weighted samples (Value-at-Risk),
    conditional value-at-risk, weighted CDFs, and correlation. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,1]: smallest value [v] such that at
    least a fraction [p] of the (equally weighted) samples are <= [v].
    Raises [Invalid_argument] on an empty array. *)

val median : float array -> float

val weighted_var : (float * float) array -> beta:float -> float
(** [weighted_var samples ~beta]: Value-at-Risk at level [beta] of
    weighted samples [(value, probability)].  Returns the smallest [v]
    such that the probability of samples with value <= [v] is >= [beta].
    If total probability is below [beta], the missing mass is treated as
    the worst possible value and the result is the maximum sample value
    only when the observed mass reaches [beta]; otherwise [1.0] —
    callers pass loss fractions, for which 1.0 is the worst case.  This
    matches the paper's conservative treatment of unsampled failure
    states. *)

val weighted_cvar : (float * float) array -> beta:float -> float
(** Conditional Value-at-Risk: expected value of the worst [1 - beta]
    probability mass (missing mass charged at loss 1.0). *)

val weighted_cdf : (float * float) array -> (float * float) list
(** Sorted [(value, cumulative probability)] points of the weighted
    distribution. *)

val pearson : float array -> float array -> float
(** Pearson correlation coefficient; nan on degenerate input. *)

val mean : float array -> float

val fraction_leq : float array -> float -> float
(** Fraction of samples <= threshold. *)
