lib/traffic/gravity.ml: Array Flexile_net Flexile_util
