lib/traffic/gravity.mli: Flexile_net Flexile_util
