let node_masses ~seed ~n =
  Array.init n (fun _ -> Flexile_util.Prng.exponential seed ~rate:1.)

let matrix ~seed ~graph ~pairs =
  let masses = node_masses ~seed ~n:graph.Flexile_net.Graph.n in
  let raw =
    Array.map (fun (u, v) -> masses.(u) *. masses.(v)) pairs
  in
  let total = Array.fold_left ( +. ) 0. raw in
  if total <= 0. then invalid_arg "Gravity.matrix: degenerate masses";
  let mean = total /. float_of_int (Array.length pairs) in
  Array.map (fun d -> d /. mean) raw

let scale_to_mlu ~mlu ~target demands =
  let m = mlu demands in
  if not (m > 0.) then invalid_arg "Gravity.scale_to_mlu: MLU not positive";
  let f = target /. m in
  Array.map (fun d -> d *. f) demands

let split_two_class ~seed ~low_scale demands =
  let high = Array.make (Array.length demands) 0. in
  let low = Array.make (Array.length demands) 0. in
  Array.iteri
    (fun i d ->
      let frac = Flexile_util.Prng.uniform seed 0.2 0.8 in
      high.(i) <- d *. frac;
      low.(i) <- d *. (1. -. frac) *. low_scale)
    demands;
  (high, low)
