(** Minimum-cost capacity augmentation (appendix B): add capacity
    delta_e (at per-unit cost w_e) so that each class's PercLoss is at
    most a prescribed limit.

    Two planning modes reproduce the §3 comparison:
    - [`Per_flow]: Flexile's planning — each flow may meet its target
      in its own set of critical scenarios (variables z_fq);
    - [`Common]: the scenario-centric planning forced on ScenBest-like
      schemes — all flows share one set of scenarios (variables z_q),
      so the triangle of Fig. 1 needs every link doubled while
      Flexile-style planning needs nothing. *)

type result = {
  cost : float;  (** total added-capacity cost *)
  added : float array;  (** per-edge capacity added *)
  optimal : bool;
}

val min_cost :
  ?options:Flexile_lp.Mip.options ->
  ?edge_cost:(int -> float) ->
  ?max_add:float ->
  mode:[ `Per_flow | `Common ] ->
  perc_limit:float array ->
  Instance.t ->
  result
(** [perc_limit.(k)] bounds class [k]'s PercLoss.  [edge_cost] defaults
    to 1 per unit on every edge; [max_add] (default 4x the largest
    capacity) bounds each edge's augmentation to keep the MIP bounded. *)
