(** Post-analysis metrics over a loss matrix (Definition 4.1/4.2 and
    §2 of the paper).

    All percentile computations treat the probability mass of
    scenarios that were *not* enumerated as suffering the worst loss
    (1.0), matching the paper's conservative design targets. *)

val flow_loss_var : Instance.t -> Instance.losses -> Instance.flow -> beta:float -> float
(** FlowLoss(f, beta): the beta-percentile of the flow's loss across
    failure scenarios (Definition 4.1). *)

val perc_loss : Instance.t -> Instance.losses -> cls:int -> ?beta:float -> unit -> float
(** PercLoss_k (Definition 4.2): max over the class's flows of
    FlowLoss(f, beta).  [beta] defaults to the class target.  Flows
    with zero demand are ignored. *)

val scen_loss : Instance.t -> Instance.losses -> sid:int -> ?connected_only:bool -> unit -> float
(** ScenLoss_q (Definition 2.1): worst flow loss in a scenario.  With
    [connected_only] (default true) disconnected flows are excluded,
    as in the paper's §6.3 comparison. *)

val flow_cvar : Instance.t -> Instance.losses -> Instance.flow -> beta:float -> float
(** CVaR(f, beta): expected loss of the worst (1-beta) tail. *)

val flow_var_cdf :
  Instance.t -> Instance.losses -> cls:int -> beta:float -> (float * float) list
(** CDF across the class's flows of FlowLoss(f, beta): sorted
    [(loss, fraction of flows <= loss)] (Fig. 5). *)

val scenario_penalty_cdf :
  Instance.t ->
  Instance.losses ->
  baseline:Instance.losses ->
  (float * float) list
(** Weighted CDF over scenarios of
    [scen_loss losses - scen_loss baseline] (Fig. 6: the loss penalty
    in each scenario relative to ScenBest). *)

val worst_flow_cdf :
  Instance.t -> Instance.losses -> cls:int -> (float * float) list
(** Weighted CDF over scenarios of the class's worst connected-flow
    loss (Fig. 13). *)

val total_weighted_penalty : Instance.t -> Instance.losses -> float
(** The Flexile objective: sum over classes of weight * PercLoss. *)
