type result = {
  losses : Instance.losses;
  offline : Flexile_offline.result;
}

let run ?config inst =
  let offline = Flexile_offline.solve ?config inst in
  let losses = Flexile_online.run inst ~offline in
  { losses; offline }
