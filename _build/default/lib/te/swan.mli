(** The two SWAN variants of §6.

    Both serve traffic classes in strict priority order and, unlike
    ScenBest-Multi and Flexile, pin the routing of a class before
    allocating residual capacity to lower classes.

    - SWAN-Throughput maximizes each class's delivered volume, which
      can starve long flows entirely (the A-B-C example of §6.2);
    - SWAN-Maxmin approximates max-min fairness within each class. *)

val run_throughput : Instance.t -> Instance.losses
val run_maxmin : Instance.t -> Instance.losses
