(** Cheap instance-wide lower bound on the optimal PercLoss.

    For each flow in isolation, the least loss it could suffer in a
    scenario — given the {e entire} network to itself — is a lower
    bound on its loss under any scheme; the beta-percentile of those
    per-scenario minima is therefore a lower bound on FlowLoss(f,beta),
    and the max across a class's flows lower-bounds PercLoss_k.  When a
    scheme achieves this bound (Flexile frequently achieves 0), it is
    provably optimal without solving the IP. *)

val isolated_losses : Instance.t -> Instance.losses
(** [isolated_losses inst].(fid).(sid): minimum loss of the flow when
    routed alone over its alive tunnels in the scenario. *)

val perc_loss_lower_bound : Instance.t -> cls:int -> float
