lib/te/flexile_scheme.mli: Flexile_offline Instance
