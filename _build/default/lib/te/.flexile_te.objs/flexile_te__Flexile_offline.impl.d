lib/te/flexile_offline.ml: Array Flexile_failure Flexile_lp Flexile_net Float Hashtbl Instance List Logs Metrics Printf Scenbest Unix
