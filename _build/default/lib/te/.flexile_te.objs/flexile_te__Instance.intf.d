lib/te/instance.mli: Flexile_failure Flexile_net
