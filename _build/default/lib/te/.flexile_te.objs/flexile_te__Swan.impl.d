lib/te/swan.ml: Array Flexile_lp Float Instance List Scen_lp
