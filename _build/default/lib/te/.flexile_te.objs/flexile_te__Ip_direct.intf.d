lib/te/ip_direct.mli: Flexile_lp Instance
