lib/te/ffc.ml: Array Flexile_lp Flexile_net Float Instance List
