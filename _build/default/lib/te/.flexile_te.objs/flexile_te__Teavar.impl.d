lib/te/teavar.ml: Array Flexile_failure Flexile_lp Flexile_net Float Instance List Printf
