lib/te/cvar_flow.mli: Instance
