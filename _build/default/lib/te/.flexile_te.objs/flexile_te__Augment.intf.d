lib/te/augment.mli: Flexile_lp Instance
