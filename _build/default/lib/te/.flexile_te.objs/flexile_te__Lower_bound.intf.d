lib/te/lower_bound.mli: Instance
