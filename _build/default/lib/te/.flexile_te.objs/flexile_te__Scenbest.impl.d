lib/te/scenbest.ml: Array Float Instance List Scen_lp
