lib/te/scen_lp.ml: Array Flexile_lp Flexile_net Float Instance List Logs Printf
