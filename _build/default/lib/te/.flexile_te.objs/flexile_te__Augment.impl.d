lib/te/augment.ml: Array Flexile_failure Flexile_lp Flexile_net Float Instance List
