lib/te/metrics.mli: Instance
