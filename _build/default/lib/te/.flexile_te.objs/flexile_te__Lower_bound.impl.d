lib/te/lower_bound.ml: Array Flexile_lp Flexile_net Float Hashtbl Instance Metrics
