lib/te/flexile_scheme.ml: Flexile_offline Flexile_online Instance
