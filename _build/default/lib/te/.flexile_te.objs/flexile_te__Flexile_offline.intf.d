lib/te/flexile_offline.mli: Flexile_lp Instance
