lib/te/ffc.mli: Instance
