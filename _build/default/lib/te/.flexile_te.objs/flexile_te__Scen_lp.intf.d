lib/te/scen_lp.mli: Flexile_lp Instance
