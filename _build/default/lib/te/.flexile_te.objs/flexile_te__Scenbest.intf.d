lib/te/scenbest.mli: Instance
