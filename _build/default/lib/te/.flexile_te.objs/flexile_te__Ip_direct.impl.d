lib/te/ip_direct.ml: Array Flexile_failure Flexile_lp Flexile_net Float Instance List Unix
