lib/te/cvar_flow.ml: Array Flexile_failure Flexile_lp Flexile_net Float Instance List
