lib/te/flexile_online.ml: Array Flexile_offline Float Instance List Scen_lp
