lib/te/metrics.ml: Array Flexile_failure Flexile_util Float Instance List
