lib/te/teavar.mli: Instance
