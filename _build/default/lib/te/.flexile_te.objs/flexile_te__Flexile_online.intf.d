lib/te/flexile_online.mli: Flexile_offline Instance
