lib/te/mlu.ml: Array Flexile_lp Flexile_net
