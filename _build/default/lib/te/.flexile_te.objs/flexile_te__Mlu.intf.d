lib/te/mlu.mli: Flexile_net
