lib/te/swan.mli: Instance
