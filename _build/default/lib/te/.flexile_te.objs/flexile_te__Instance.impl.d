lib/te/instance.ml: Array Flexile_failure Flexile_net Float List Printf
