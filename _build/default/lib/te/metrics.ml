module Stats = Flexile_util.Stats
module Failure_model = Flexile_failure.Failure_model

let weighted_losses inst losses (f : Instance.flow) =
  Array.map
    (fun (s : Failure_model.scenario) ->
      (losses.(f.Instance.fid).(s.Failure_model.sid), s.Failure_model.prob))
    inst.Instance.scenarios

let flow_loss_var inst losses f ~beta =
  Stats.weighted_var (weighted_losses inst losses f) ~beta

let flow_cvar inst losses f ~beta =
  Stats.weighted_cvar (weighted_losses inst losses f) ~beta

let perc_loss inst losses ~cls ?beta () =
  let beta =
    match beta with Some b -> b | None -> inst.Instance.classes.(cls).Instance.beta
  in
  Array.fold_left
    (fun acc (f : Instance.flow) ->
      if f.Instance.cls = cls && f.Instance.demand > 0. then
        Float.max acc (flow_loss_var inst losses f ~beta)
      else acc)
    0. inst.Instance.flows

let scen_loss inst losses ~sid ?(connected_only = true) () =
  Array.fold_left
    (fun acc (f : Instance.flow) ->
      if
        f.Instance.demand > 0.
        && ((not connected_only) || Instance.flow_connected inst f sid)
      then Float.max acc losses.(f.Instance.fid).(sid)
      else acc)
    0. inst.Instance.flows

let flow_var_cdf inst losses ~cls ~beta =
  let vars =
    Array.to_list inst.Instance.flows
    |> List.filter (fun (f : Instance.flow) ->
           f.Instance.cls = cls && f.Instance.demand > 0.)
    |> List.map (fun f -> flow_loss_var inst losses f ~beta)
  in
  let n = List.length vars in
  if n = 0 then []
  else begin
    let sorted = List.sort compare vars in
    List.mapi
      (fun i v -> (v, float_of_int (i + 1) /. float_of_int n))
      sorted
  end

let scenario_penalty_cdf inst losses ~baseline =
  let samples =
    Array.map
      (fun (s : Failure_model.scenario) ->
        let sid = s.Failure_model.sid in
        let p = scen_loss inst losses ~sid () in
        let b = scen_loss inst baseline ~sid () in
        (Float.max 0. (p -. b), s.Failure_model.prob))
      inst.Instance.scenarios
  in
  Stats.weighted_cdf samples

let worst_flow_cdf inst losses ~cls =
  let samples =
    Array.map
      (fun (s : Failure_model.scenario) ->
        let sid = s.Failure_model.sid in
        let worst =
          Array.fold_left
            (fun acc (f : Instance.flow) ->
              if
                f.Instance.cls = cls && f.Instance.demand > 0.
                && Instance.flow_connected inst f sid
              then Float.max acc losses.(f.Instance.fid).(sid)
              else acc)
            0. inst.Instance.flows
        in
        (worst, s.Failure_model.prob))
      inst.Instance.scenarios
  in
  Stats.weighted_cdf samples

let total_weighted_penalty inst losses =
  let acc = ref 0. in
  Array.iteri
    (fun k (c : Instance.cls) ->
      acc := !acc +. (c.Instance.weight *. perc_loss inst losses ~cls:k ()))
    inst.Instance.classes;
  !acc
