let apply_results inst losses sid results =
  List.iter (fun (fid, v) -> losses.(fid).(sid) <- Float.max 0. (Float.min 1. v)) results;
  (* zero-demand flows carry no loss *)
  Array.iter
    (fun (f : Instance.flow) ->
      if f.Instance.demand <= 0. then losses.(f.Instance.fid).(sid) <- 0.)
    inst.Instance.flows

let all_classes inst =
  List.init (Array.length inst.Instance.classes) (fun k -> k)

let run inst =
  let losses = Instance.alloc_losses inst in
  for sid = 0 to Instance.nscenarios inst - 1 do
    (* single class: every class processed together in one level set *)
    let results =
      Scen_lp.maxmin_losses inst ~sid ~class_order:(all_classes inst)
        ~merge_classes:true ()
    in
    apply_results inst losses sid results
  done;
  losses

let run_multi inst =
  let losses = Instance.alloc_losses inst in
  for sid = 0 to Instance.nscenarios inst - 1 do
    let results =
      Scen_lp.maxmin_losses inst ~sid ~class_order:(all_classes inst) ()
    in
    apply_results inst losses sid results
  done;
  losses

let scen_loss_optimal inst =
  Array.init (Instance.nscenarios inst) (fun sid ->
      let ctx = Scen_lp.build inst ~sid in
      let connected f = Instance.flow_connected inst f sid in
      match Scen_lp.solve_min_weighted_max ctx ~flows:connected ~frozen:[] with
      | Some v -> Float.max 0. (Float.min 1. v)
      | None -> 1.)
