module Lp_model = Flexile_lp.Lp_model
module Simplex = Flexile_lp.Simplex
module Graph = Flexile_net.Graph

let min_mlu ~graph ~tunnels ~demands =
  let np = Array.length demands in
  if Array.length tunnels <> np then invalid_arg "Mlu.min_mlu";
  let model = Lp_model.create ~name:"min-mlu" () in
  let mu = Lp_model.add_var model ~obj:1. () in
  let per_edge = Array.make (Graph.nedges graph) [] in
  for i = 0 to np - 1 do
    if demands.(i) > 0. then begin
      if Array.length tunnels.(i) = 0 then
        failwith "Mlu.min_mlu: pair with demand but no tunnel";
      let vars =
        Array.map
          (fun (t : Flexile_net.Tunnels.t) ->
            let v = Lp_model.add_var model () in
            Array.iter
              (fun e -> per_edge.(e) <- (v, 1.) :: per_edge.(e))
              t.Flexile_net.Tunnels.path;
            v)
          tunnels.(i)
      in
      ignore
        (Lp_model.add_row model Lp_model.Eq demands.(i)
           (Array.to_list (Array.map (fun v -> (v, 1.)) vars)))
    end
  done;
  Array.iteri
    (fun e coeffs ->
      if coeffs <> [] then
        let cap = graph.Graph.edges.(e).Graph.capacity in
        ignore (Lp_model.add_row model Lp_model.Le 0. ((mu, -.cap) :: coeffs)))
    per_edge;
  let sol = Simplex.solve model in
  match sol.Simplex.status with
  | Simplex.Optimal -> sol.Simplex.x.(mu)
  | _ -> failwith "Mlu.min_mlu: LP did not solve to optimality"
