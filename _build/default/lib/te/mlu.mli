(** Minimum maximum-link-utilization routing over tunnels in the
    no-failure state.  Used to scale gravity traffic matrices into the
    paper's target MLU window [0.5, 0.7], and as the SMORE metric. *)

val min_mlu :
  graph:Flexile_net.Graph.t ->
  tunnels:Flexile_net.Tunnels.t array array ->
  demands:float array ->
  float
(** [min_mlu ~graph ~tunnels ~demands]: tunnels and demand per pair
    (single class); all demand must be routed; returns the least
    achievable MLU.  Raises [Failure] if some pair with positive demand
    has no tunnel. *)
