module Lp_model = Flexile_lp.Lp_model
module Simplex = Flexile_lp.Simplex

let class_order inst =
  List.init (Array.length inst.Instance.classes) (fun k -> k)

let run_maxmin inst =
  let losses = Instance.alloc_losses inst in
  for sid = 0 to Instance.nscenarios inst - 1 do
    let results =
      Scen_lp.maxmin_losses inst ~sid ~class_order:(class_order inst)
        ~freeze_routing:true ()
    in
    List.iter
      (fun (fid, v) -> losses.(fid).(sid) <- Float.max 0. (Float.min 1. v))
      results;
    Array.iter
      (fun (f : Instance.flow) ->
        if f.Instance.demand <= 0. then losses.(f.Instance.fid).(sid) <- 0.)
      inst.Instance.flows
  done;
  losses

let run_throughput inst =
  let losses = Instance.alloc_losses inst in
  for sid = 0 to Instance.nscenarios inst - 1 do
    let ctx = Scen_lp.build inst ~sid in
    let model = ctx.Scen_lp.model in
    List.iter
      (fun k ->
        let class_flows =
          Array.to_list inst.Instance.flows
          |> List.filter (fun (f : Instance.flow) ->
                 f.Instance.cls = k && f.Instance.demand > 0.)
        in
        (* maximize delivered volume = minimize sum of l_f * d_f *)
        List.iter
          (fun (f : Instance.flow) ->
            if ctx.Scen_lp.l.(f.Instance.fid) >= 0 then
              Lp_model.set_obj model ctx.Scen_lp.l.(f.Instance.fid)
                f.Instance.demand)
          class_flows;
        let sol = Simplex.solve model in
        List.iter
          (fun (f : Instance.flow) ->
            let fid = f.Instance.fid in
            if ctx.Scen_lp.l.(fid) >= 0 then begin
              Lp_model.set_obj model ctx.Scen_lp.l.(fid) 0.;
              match sol.Simplex.status with
              | Simplex.Optimal ->
                  let v = sol.Simplex.x.(ctx.Scen_lp.l.(fid)) in
                  losses.(fid).(sid) <- Float.max 0. (Float.min 1. v);
                  (* pin the achieved loss so lower classes cannot
                     cannibalize this class's allocation *)
                  Lp_model.set_bounds model ctx.Scen_lp.l.(fid)
                    ~lb:(Lp_model.lb model ctx.Scen_lp.l.(fid))
                    ~ub:(Float.min 1. (v +. 1e-9))
              | _ -> losses.(fid).(sid) <- 1.
            end
            else losses.(fid).(sid) <- (if f.Instance.demand <= 0. then 0. else 1.))
          class_flows;
        (* SWAN pins the class's routing before the next class *)
        (match sol.Simplex.status with
        | Simplex.Optimal ->
            Array.iter
              (fun per_pair ->
                Array.iter
                  (fun v ->
                    if v >= 0 then
                      Lp_model.set_bounds model v ~lb:sol.Simplex.x.(v)
                        ~ub:sol.Simplex.x.(v))
                  per_pair)
              ctx.Scen_lp.x.(k)
        | _ -> ()))
      (class_order inst)
  done;
  losses
