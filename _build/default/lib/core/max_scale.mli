(** Fig. 18 (appendix D): the largest factor by which low-priority
    traffic can be scaled while still incurring zero loss at its 99th
    percentile, compared across schemes.  Flexile sustains markedly
    higher scale than SWAN-Maxmin because different flows may meet
    their target in different failure states. *)

val search :
  ?options:Builder.options ->
  ?lo:float ->
  ?hi:float ->
  ?steps:int ->
  scheme:Schemes.t ->
  graph:Flexile_net.Graph.t ->
  unit ->
  float
(** Binary search over the low-priority scale factor in [lo, hi]
    (defaults [0.25, 4.0], 6 steps); returns the largest factor for
    which the scheme's low-priority PercLoss at beta 0.99 is ~0. *)
