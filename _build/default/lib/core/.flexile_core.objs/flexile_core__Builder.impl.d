lib/core/builder.ml: Array Flexile_failure Flexile_net Flexile_te Flexile_traffic Flexile_util Float
