lib/core/max_scale.ml: Builder Flexile_te Metrics Schemes
