lib/core/schemes.mli: Flexile_te
