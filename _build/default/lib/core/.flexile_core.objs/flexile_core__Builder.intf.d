lib/core/builder.mli: Flexile_net Flexile_te
