lib/core/schemes.ml: Cvar_flow Ffc Flexile_net Flexile_scheme Flexile_te Instance Ip_direct List Scenbest String Swan Teavar
