lib/core/max_scale.mli: Builder Flexile_net Schemes
