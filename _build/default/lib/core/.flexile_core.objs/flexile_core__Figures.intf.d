lib/core/figures.mli:
