(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md section 4 for the index) and runs
   Bechamel micro-benchmarks of the computational kernels.

   Usage:
     dune exec bench/main.exe                 -- all figures, quick profile
     dune exec bench/main.exe -- --fig 11     -- a single figure
     dune exec bench/main.exe -- --full       -- all 20 topologies (slow)
     dune exec bench/main.exe -- --micro      -- Bechamel kernels only *)

open Flexile_core

let micro_benchmarks () =
  print_endline "\n==================== micro-benchmarks (Bechamel) ====================";
  let open Bechamel in
  let inst = Builder.of_name ~options:{ Builder.default_options with Builder.max_scenarios = 40 } "Sprint" in
  let scenbest_scenario =
    Test.make ~name:"scenbest-scenario-lp" (Staged.stage (fun () ->
        ignore
          (Flexile_te.Scen_lp.maxmin_losses inst ~sid:1 ~class_order:[ 0 ]
             ~merge_classes:true ())))
  in
  let subproblem_sweep =
    Test.make ~name:"flexile-offline-sprint" (Staged.stage (fun () ->
        ignore
          (Flexile_te.Flexile_offline.solve
             ~config:
               {
                 Flexile_te.Flexile_offline.default_config with
                 Flexile_te.Flexile_offline.max_iterations = 1;
               }
             inst)))
  in
  let simplex_kernel =
    let model = Flexile_lp.Lp_model.create () in
    let vars =
      Array.init 60 (fun i ->
          Flexile_lp.Lp_model.add_var model ~ub:10. ~obj:(-.float_of_int (1 + (i mod 7))) ())
    in
    for r = 0 to 39 do
      let coeffs =
        Array.to_list
          (Array.mapi (fun j v -> (v, float_of_int (1 + ((r + j) mod 5)))) vars)
      in
      ignore (Flexile_lp.Lp_model.add_row model Flexile_lp.Lp_model.Le 50. coeffs)
    done;
    Test.make ~name:"simplex-60x40" (Staged.stage (fun () ->
        ignore (Flexile_lp.Simplex.solve model)))
  in
  let open Bechamel.Toolkit in
  let tests =
    Test.make_grouped ~name:"flexile"
      [ simplex_kernel; scenbest_scenario; subproblem_sweep ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 2.) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, stats) ->
      match Analyze.OLS.estimates stats with
      | Some [ est ] -> Printf.printf "  %-36s %12.3f ms/run\n" name (est /. 1e6)
      | _ -> Printf.printf "  %-36s (no estimate)\n" name)
    (List.sort compare rows)

let () =
  let fig = ref "all" in
  let full = ref false in
  let micro = ref false in
  let args =
    [
      ( "--fig",
        Arg.Set_string fig,
        "figure id: all|motivation|table2|5|6|9|10|11|12|13|14|15|18|scenloss|ablation"
      );
      ("--full", Arg.Set full, "use all 20 topologies (slow)");
      ("--micro", Arg.Set micro, "run only the Bechamel micro-benchmarks");
    ]
  in
  Arg.parse args (fun _ -> ()) "flexile benchmark harness";
  let profile = if !full then Figures.full else Figures.quick in
  (* environment overrides for constrained machines / CI *)
  let getenv_int name current =
    match Sys.getenv_opt name with
    | Some v -> ( match int_of_string_opt v with Some i -> i | None -> current)
    | None -> current
  in
  let profile =
    {
      profile with
      Figures.max_scenarios =
        getenv_int "FLEXILE_BENCH_SCENARIOS" profile.Figures.max_scenarios;
      max_pairs = getenv_int "FLEXILE_BENCH_PAIRS" profile.Figures.max_pairs;
      emu_runs = getenv_int "FLEXILE_BENCH_EMU_RUNS" profile.Figures.emu_runs;
      cvar_scenarios =
        getenv_int "FLEXILE_BENCH_CVAR_SCENARIOS" profile.Figures.cvar_scenarios;
    }
  in
  if !micro then micro_benchmarks ()
  else begin
    (match !fig with
    | "all" -> Figures.all profile
    | "motivation" -> Figures.motivation ()
    | "table2" -> Figures.table2 ()
    | "5" -> Figures.fig5 profile
    | "6" -> Figures.fig6 profile
    | "9" -> Figures.fig9 profile
    | "10" -> Figures.fig10 profile
    | "11" -> Figures.fig11 profile
    | "12" -> Figures.fig12 profile
    | "13" -> Figures.fig13 profile
    | "14" -> Figures.fig14 profile
    | "15" -> Figures.fig15 profile
    | "18" -> Figures.fig18 profile
    | "scenloss" -> Figures.scenloss profile
    | "ablation" -> Figures.ablation profile
    | other -> Printf.printf "unknown figure: %s\n" other);
    if !fig = "all" then micro_benchmarks ()
  end
