(* Bring your own topology: parse a Topology-Zoo-style GML file (here
   inlined; pass a path to load your own), build a single-class
   instance with the paper's methodology, and compare Flexile with
   SMORE and FFC on it.

   Run with: dune exec examples/custom_topology.exe [file.gml] *)

open Flexile_te

let inline_gml =
  {|
graph [
  label "demo-wan"
  node [ id 0 label "SEA" ]
  node [ id 1 label "SFO" ]
  node [ id 2 label "LAX" ]
  node [ id 3 label "DEN" ]
  node [ id 4 label "CHI" ]
  node [ id 5 label "NYC" ]
  node [ id 6 label "ATL" ]
  edge [ source 0 target 1 LinkSpeed 10 ]
  edge [ source 1 target 2 LinkSpeed 10 ]
  edge [ source 0 target 3 LinkSpeed 2.5 ]
  edge [ source 1 target 3 LinkSpeed 5 ]
  edge [ source 2 target 6 LinkSpeed 5 ]
  edge [ source 3 target 4 LinkSpeed 10 ]
  edge [ source 4 target 5 LinkSpeed 10 ]
  edge [ source 5 target 6 LinkSpeed 5 ]
  edge [ source 4 target 6 LinkSpeed 2.5 ]
]
|}

let () =
  let graph =
    if Array.length Sys.argv > 1 then Flexile_net.Gml.load Sys.argv.(1)
    else Flexile_net.Gml.parse ~name:"demo-wan" inline_gml
  in
  Printf.printf "topology %s: %d nodes, %d links\n"
    graph.Flexile_net.Graph.name graph.Flexile_net.Graph.n
    (Flexile_net.Graph.nedges graph);
  let options =
    { Flexile_core.Builder.default_options with Flexile_core.Builder.max_scenarios = 50 }
  in
  let inst = Flexile_core.Builder.single_class ~options ~graph () in
  (* the builder picks the highest feasible target; for a product SLO
     you would fix it explicitly — say three nines *)
  let inst =
    Instance.with_classes inst
      [| { (inst.Instance.classes.(0)) with Instance.beta = 0.999 } |]
  in
  Printf.printf "design target beta = %.5f over %d scenarios\n\n"
    inst.Instance.classes.(0).Instance.beta
    (Instance.nscenarios inst);
  let report name losses =
    Printf.printf "%-8s PercLoss = %6.2f%%\n" name
      (100. *. Metrics.perc_loss inst losses ~cls:0 ())
  in
  (* on this small, well-connected demo the probabilistic schemes all
     meet the SLO; FFC's deterministic 1-failure planning pays its toll
     in every scenario regardless of how unlikely failures are *)
  report "SMORE" (Scenbest.run inst);
  report "FFC" (Ffc.run inst).Ffc.losses;
  let fx = Flexile_scheme.run inst in
  report "Flexile" fx.Flexile_scheme.losses;
  Printf.printf "\nlower bound for any scheme: %.2f%%\n"
    (100. *. Lower_bound.perc_loss_lower_bound inst ~cls:0)
