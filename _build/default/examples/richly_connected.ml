(* The §6.2 "richly connected" study: split every link into two
   sub-links that fail independently (so the network almost never
   partitions) and compare Flexile with SMORE and TeaVar at the
   highest sustainable availability target (cf. Fig 12).

   Run with: dune exec examples/richly_connected.exe *)

open Flexile_te

let pct x = 100. *. x

let () =
  let graph = Flexile_net.Graph.split_links (Flexile_net.Catalog.by_name "Sprint") in
  let options =
    { Flexile_core.Builder.default_options with Flexile_core.Builder.max_scenarios = 60 }
  in
  let inst = Flexile_core.Builder.single_class ~options ~graph () in
  Printf.printf
    "Sprint with split sub-links: %d links, %d scenarios, beta=%.4f\n\n"
    (Flexile_net.Graph.nedges graph)
    (Instance.nscenarios inst)
    inst.Instance.classes.(0).Instance.beta;

  let report name losses =
    Printf.printf "%-10s PercLoss = %5.2f%%\n" name
      (pct (Metrics.perc_loss inst losses ~cls:0 ()))
  in
  report "SMORE" (Scenbest.run inst);
  let fx = Flexile_scheme.run inst in
  report "Flexile" fx.Flexile_scheme.losses;
  (try report "TeaVar" (Teavar.run inst).Teavar.losses
   with Failure _ -> print_endline "TeaVar     did not solve");
  Printf.printf "\nlower bound on any scheme: %.2f%%\n"
    (pct (Lower_bound.perc_loss_lower_bound inst ~cls:0));

  (* does Flexile hurt scenarios? (§6.3) *)
  let baseline = Scenbest.run inst in
  let cdf = Metrics.scenario_penalty_cdf inst fx.Flexile_scheme.losses ~baseline in
  let at mass =
    List.fold_left (fun acc (v, c) -> if c <= mass then Float.max acc v else acc) 0. cdf
  in
  Printf.printf "Flexile's ScenLoss penalty vs optimal: %.2f%% at 99%%ile, %.2f%% at 99.9%%ile\n"
    (pct (at 0.99)) (pct (at 0.999))
