(* Quickstart: the paper's motivating example (Figs 1-4) end to end.

   A triangle network must carry one unit A->B and one unit A->C, each
   99% of the time, over unit-capacity links failing independently with
   probability 0.01.  Scenario-optimal schemes (SMORE / ScenBest) and
   TeaVar can only guarantee half a unit; Flexile serves both flows
   fully by prioritizing each flow in the scenarios critical for it.

   Run with: dune exec examples/quickstart.exe *)

open Flexile_te

let pct x = 100. *. x

let () =
  let inst = Flexile_core.Builder.fig1 () in
  Printf.printf "Triangle network (Fig 1): 2 flows, %d failure scenarios, target 99%%\n\n"
    (Instance.nscenarios inst);

  (* 1. ScenBest / SMORE: optimal per scenario, blind across scenarios *)
  let smore = Scenbest.run inst in
  Printf.printf "SMORE/ScenBest  PercLoss at 99%% = %.1f%%\n"
    (pct (Metrics.perc_loss inst smore ~cls:0 ()));

  (* 2. TeaVar: CVaR approximation + static routing *)
  let tv = Teavar.run inst in
  Printf.printf "TeaVar          PercLoss at 99%% = %.1f%%\n"
    (pct (Metrics.perc_loss inst tv.Teavar.losses ~cls:0 ()));

  (* 3. Flexile: offline critical scenarios + online allocation *)
  let fx = Flexile_scheme.run inst in
  Printf.printf "Flexile         PercLoss at 99%% = %.1f%%\n\n"
    (pct (Metrics.perc_loss inst fx.Flexile_scheme.losses ~cls:0 ()));

  (* show the critical scenarios Flexile chose (cf. Fig 4) *)
  let best = fx.Flexile_scheme.offline.Flexile_offline.best in
  Printf.printf "critical scenarios chosen by the offline phase:\n";
  Array.iter
    (fun (f : Instance.flow) ->
      Printf.printf "  flow %d->%d:" f.Instance.src f.Instance.dst;
      Array.iteri
        (fun sid (s : Flexile_failure.Failure_model.scenario) ->
          if best.Flexile_offline.z.(f.Instance.fid).(sid) then
            Printf.printf " {%s}"
              (if Array.length s.Flexile_failure.Failure_model.failed_units = 0
               then "none"
               else
                 String.concat ","
                   (Array.to_list
                      (Array.map string_of_int
                         s.Flexile_failure.Failure_model.failed_units))))
        inst.Instance.scenarios;
      print_newline ())
    inst.Instance.flows;

  (* per-flow percentile losses *)
  Printf.printf "\nper-flow 99%%ile loss:\n";
  Array.iter
    (fun (f : Instance.flow) ->
      Printf.printf "  flow %d->%d: SMORE %.1f%%  TeaVar %.1f%%  Flexile %.1f%%\n"
        f.Instance.src f.Instance.dst
        (pct (Metrics.flow_loss_var inst smore f ~beta:0.99))
        (pct (Metrics.flow_loss_var inst tv.Teavar.losses f ~beta:0.99))
        (pct
           (Metrics.flow_loss_var inst fx.Flexile_scheme.losses f ~beta:0.99)))
    inst.Instance.flows
