(* Capacity planning (appendix B + the §3 observation): how much link
   capacity must be added so that every flow meets its availability
   target with zero loss?

   Flexile-style planning lets each flow pick its own critical
   scenarios; scenario-centric planning (what a ScenBest/SMORE operator
   must provision for) needs one scenario set covering the target for
   ALL flows simultaneously.  On the Fig-1 triangle the difference is
   stark: Flexile needs no new capacity, the scenario-centric plan
   must double both access links.

   Run with: dune exec examples/capacity_planning.exe *)

open Flexile_te

let show name (r : Augment.result) inst =
  if r.Augment.cost = infinity then
    Printf.printf "%-24s infeasible\n" name
  else begin
    Printf.printf "%-24s total cost %.2f" name r.Augment.cost;
    Array.iteri
      (fun e add ->
        if add > 1e-6 then
          let edge = inst.Instance.graph.Flexile_net.Graph.edges.(e) in
          Printf.printf "  [+%.2f on %d-%d]" add edge.Flexile_net.Graph.u
            edge.Flexile_net.Graph.v)
      r.Augment.added;
    print_newline ()
  end

let () =
  let inst = Flexile_core.Builder.fig1 () in
  Printf.printf "Fig-1 triangle: zero-loss target at 99%% availability\n\n";
  let per_flow =
    Augment.min_cost ~mode:`Per_flow ~perc_limit:[| 0.0 |] inst
  in
  show "Flexile planning" per_flow inst;
  let common =
    Augment.min_cost ~mode:`Common ~perc_limit:[| 0.0 |] inst
  in
  show "scenario-centric plan" common inst;
  Printf.printf
    "\n(the scenario-centric plan must survive each single-link failure with\n\
    \ both flows intact simultaneously, hence the extra capacity)\n";

  (* a relaxed target: 25% loss allowed at the percentile *)
  Printf.printf "\nrelaxed target (25%% loss allowed):\n";
  show "Flexile planning"
    (Augment.min_cost ~mode:`Per_flow ~perc_limit:[| 0.25 |] inst)
    inst;
  show "scenario-centric plan"
    (Augment.min_cost ~mode:`Common ~perc_limit:[| 0.25 |] inst)
    inst
