(* A two-traffic-class WAN (the §6.1 emulation setup, scaled down):
   latency-sensitive traffic with a tight availability target plus
   elastic low-priority traffic at 99%, on the IBM topology.  Compares
   Flexile against both SWAN variants and validates the model against
   the discretization emulator (Fig 9a / 9c).

   Run with: dune exec examples/two_class_wan.exe *)

open Flexile_te

let pct x = 100. *. x

let () =
  let options =
    { Flexile_core.Builder.default_options with Flexile_core.Builder.max_scenarios = 50 }
  in
  let inst = Flexile_core.Builder.of_name ~options ~two_classes:true "IBM" in
  Printf.printf
    "IBM topology, two classes: %d flows, %d scenarios, high beta=%.4f low beta=%.2f\n\n"
    (Instance.nflows inst) (Instance.nscenarios inst)
    inst.Instance.classes.(0).Instance.beta
    inst.Instance.classes.(1).Instance.beta;

  let report name losses =
    Printf.printf "%-16s high PercLoss = %5.1f%%   low PercLoss = %5.1f%%\n" name
      (pct (Metrics.perc_loss inst losses ~cls:0 ()))
      (pct (Metrics.perc_loss inst losses ~cls:1 ()))
  in
  let fx = Flexile_scheme.run inst in
  report "Flexile" fx.Flexile_scheme.losses;
  report "SWAN-Maxmin" (Swan.run_maxmin inst);
  report "SWAN-Throughput" (Swan.run_throughput inst);
  report "ScenBest-Multi" (Scenbest.run_multi inst);

  (* emulate Flexile's allocation with OvS-style integer weights *)
  Printf.printf "\nemulating Flexile with integer select-group weights (5 runs):\n";
  for i = 1 to 5 do
    let seed = Flexile_util.Prng.of_string (Printf.sprintf "two-class-emu-%d" i) in
    let r =
      Flexile_emu.Emulator.emulate ~seed inst
        ~model_losses:fx.Flexile_scheme.losses
    in
    Printf.printf
      "  run %d: PCC=%.6f  max |emulated - model| = %.2f%%  high=%.2f%% low=%.2f%%\n"
      i r.Flexile_emu.Emulator.pcc
      (pct r.Flexile_emu.Emulator.max_abs_diff)
      (pct (Metrics.perc_loss inst r.Flexile_emu.Emulator.emulated ~cls:0 ()))
      (pct (Metrics.perc_loss inst r.Flexile_emu.Emulator.emulated ~cls:1 ()))
  done
