examples/capacity_planning.ml: Array Augment Flexile_core Flexile_net Flexile_te Instance Printf
