examples/custom_topology.ml: Array Ffc Flexile_core Flexile_net Flexile_scheme Flexile_te Instance Lower_bound Metrics Printf Scenbest Sys
