examples/quickstart.mli:
