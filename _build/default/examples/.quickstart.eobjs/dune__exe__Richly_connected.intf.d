examples/richly_connected.mli:
