examples/richly_connected.ml: Array Flexile_core Flexile_net Flexile_scheme Flexile_te Float Instance List Lower_bound Metrics Printf Scenbest Teavar
