examples/two_class_wan.ml: Array Flexile_core Flexile_emu Flexile_scheme Flexile_te Flexile_util Instance Metrics Printf Scenbest Swan
