examples/two_class_wan.mli:
