examples/quickstart.ml: Array Flexile_core Flexile_failure Flexile_offline Flexile_scheme Flexile_te Instance Metrics Printf Scenbest String Teavar
